#!/usr/bin/env sh
# Line coverage of the tier-1 suite, reported per subsystem. Configures a
# fresh build with BIBS_COVERAGE=ON (gcov instrumentation, -O0), runs every
# tier-1 test (the bibs-report label is excluded: those are meta-checks that
# spawn their own builds), then aggregates gcov line counts by src/<subsystem>.
# Each source file is counted once at its best-observed coverage, so headers
# compiled into many translation units are not double-counted.
#
# The check fails only if the suite itself fails or total line coverage drops
# below the floor — the per-subsystem table is informational. The current
# baseline is recorded in docs/testing.md; raise the floor when it rises.
#
# Usage: check_coverage.sh [source-dir] [min-total-percent]
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
MIN_TOTAL=${2:-80}

if ! command -v gcov > /dev/null 2>&1; then
  echo "SKIP: gcov not found" >&2
  exit 77
fi

TMP=$(mktemp -d "${TMPDIR:-/tmp}/bibs_cov.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "== configure with BIBS_COVERAGE=ON =="
cmake -S "$SRC" -B "$TMP/build" -DBIBS_COVERAGE=ON \
  > "$TMP/configure.log" 2>&1 || {
  cat "$TMP/configure.log"
  echo "FAIL: configure with BIBS_COVERAGE" >&2
  exit 1
}

echo "== build (instrumented, -O0) =="
cmake --build "$TMP/build" -j > "$TMP/build.log" 2>&1 || {
  tail -50 "$TMP/build.log"
  echo "FAIL: instrumented build" >&2
  exit 1
}

echo "== run tier-1 tests =="
(cd "$TMP/build" && ctest -LE bibs-report --output-on-failure) \
  > "$TMP/ctest.log" 2>&1 || {
  tail -80 "$TMP/ctest.log"
  echo "FAIL: tier-1 suite under coverage build" >&2
  exit 1
}

echo "== aggregate gcov by subsystem =="
# gcov prints, per source file it can attribute:
#   File 'src/fault/fault.cpp'
#   Lines executed:95.00% of 120
# Run it over every counter file and fold those pairs into per-subsystem
# totals. -n: report only, write no .gcov files.
(cd "$TMP/build" && find . -name '*.gcda' -exec gcov -n {} + 2> /dev/null) \
  > "$TMP/gcov.log" || true

awk -v src="$SRC/" -v min_total="$MIN_TOTAL" '
  /^File / {
    file = $0
    sub(/^File ./, "", file)         # drop the File prefix and open quote
    sub(/.$/, "", file)              # drop the closing quote
    sub(src, "", file)               # absolute -> repo-relative
    sub(/^\.\//, "", file)
    next
  }
  /^Lines executed:/ && file != "" {
    split($0, a, /[:% ]+/)           # a[3]=percent, a[5]=total lines
    pct = a[3] + 0; total = a[5] + 0
    hit = pct * total / 100.0
    if (file ~ /^src\//) {
      if (!(file in ftotal) || hit > fhit[file]) {
        ftotal[file] = total
        fhit[file] = hit
      }
    }
    file = ""
  }
  END {
    grand_hit = 0; grand_total = 0
    for (f in ftotal) {
      sub2 = f
      sub(/^src\//, "", sub2)
      sub(/\/.*/, "", sub2)
      shit[sub2] += fhit[f]
      stotal[sub2] += ftotal[f]
      grand_hit += fhit[f]
      grand_total += ftotal[f]
    }
    # Sort subsystem names (insertion sort; asorti is gawk-only).
    n = 0
    for (s in stotal) keys[++n] = s
    for (i = 2; i <= n; i++)
      for (j = i; j > 1 && keys[j] < keys[j - 1]; j--) {
        t = keys[j]; keys[j] = keys[j - 1]; keys[j - 1] = t
      }
    printf "%-14s %10s %10s %8s\n", "subsystem", "lines", "covered", "pct"
    for (i = 1; i <= n; i++) {
      s = keys[i]
      printf "%-14s %10d %10d %7.1f%%\n", s, stotal[s], shit[s],
             stotal[s] ? 100.0 * shit[s] / stotal[s] : 0
    }
    tpct = grand_total ? 100.0 * grand_hit / grand_total : 0
    printf "%-14s %10d %10d %7.1f%%\n", "TOTAL", grand_total, grand_hit, tpct
    if (tpct < min_total) {
      printf "FAIL: total line coverage %.1f%% is below the %.0f%% floor\n",
             tpct, min_total > "/dev/stderr"
      exit 1
    }
  }
' "$TMP/gcov.log"

echo "OK: tier-1 line coverage at or above ${MIN_TOTAL}%"
