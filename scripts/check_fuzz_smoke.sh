#!/usr/bin/env sh
# Short libFuzzer smoke over the checked-in seed corpus (fuzz/corpus). Builds
# the fuzz_parsers harness with clang (-fsanitize=fuzzer requires it) plus
# ASan+UBSan, replays every seed, then fuzzes from them for a bounded wall
# time. Any crash, sanitizer finding or non-bibs exception fails the check.
# On toolchains without clang the check SKIPS (exit 77; ctest maps that to
# "skipped" via SKIP_RETURN_CODE) rather than failing — the harness is still
# compiled into CI images that carry clang (label: bibs-report).
#
# Usage: check_fuzz_smoke.sh [source-dir] [max-total-time-seconds]
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
FUZZ_SECS=${2:-30}

CLANGXX=${CLANGXX:-clang++}
if ! command -v "$CLANGXX" > /dev/null 2>&1; then
  echo "SKIP: $CLANGXX not found; libFuzzer needs clang" >&2
  exit 77
fi

TMP=$(mktemp -d "${TMPDIR:-/tmp}/bibs_fuzz.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "== configure with BIBS_FUZZ=ON (clang) =="
CXX=$CLANGXX cmake -S "$SRC" -B "$TMP/build" -DBIBS_FUZZ=ON \
  -DBIBS_SANITIZE="address;undefined" > "$TMP/configure.log" 2>&1 || {
  cat "$TMP/configure.log"
  echo "FAIL: configure with BIBS_FUZZ" >&2
  exit 1
}

cmake --build "$TMP/build" -j --target fuzz_parsers \
  > "$TMP/build.log" 2>&1 || {
  tail -50 "$TMP/build.log"
  echo "FAIL: fuzzer build" >&2
  exit 1
}

FUZZER="$TMP/build/fuzz/fuzz_parsers"
CORPUS="$SRC/fuzz/corpus"

echo "== replay checked-in seeds =="
# -runs=0 loads and executes every corpus file without mutating: a pure
# regression replay, so a seed that once crashed can never crash again.
"$FUZZER" -runs=0 "$CORPUS" > "$TMP/replay.log" 2>&1 || {
  tail -50 "$TMP/replay.log"
  echo "FAIL: seed replay crashed" >&2
  exit 1
}

echo "== fuzz for ${FUZZ_SECS}s from the seed corpus =="
mkdir -p "$TMP/corpus"
"$FUZZER" -max_total_time="$FUZZ_SECS" -max_len=4096 -timeout=5 \
  -artifact_prefix="$TMP/" "$TMP/corpus" "$CORPUS" > "$TMP/fuzz.log" 2>&1 || {
  tail -80 "$TMP/fuzz.log"
  echo "FAIL: fuzzer found a crash (artifacts in $TMP before cleanup)" >&2
  # Preserve the reproducer where ctest logs can point at it.
  for f in "$TMP"/crash-* "$TMP"/timeout-* "$TMP"/oom-*; do
    [ -e "$f" ] && cp "$f" "$SRC/fuzz/" && echo "reproducer: fuzz/$(basename "$f")" >&2
  done
  exit 1
}

tail -3 "$TMP/fuzz.log"
echo "OK: fuzz_parsers clean over corpus replay + ${FUZZ_SECS}s fuzzing"
