#!/bin/sh
# Run the whole benchmark layer and leave machine-readable results behind.
#
#   scripts/run_benches.sh [build-dir] [out-dir]
#
# Produces, in out-dir (default: the current directory):
#   BENCH_parallel.json        thread-scaling of the parallel engines plus
#                              wall time / exit status of every table bench
#   BENCH_kernel.json          gate-evaluation kernel: compiled vs
#                              interpreted plus the SIMD lane-width matrix
#                              (throughput + bit-identity gates)
#   BENCH_bench_<name>.json    per-bench obs run report (metrics snapshot)
#
# Tunables (environment):
#   BIBS_BENCH_THREADS   comma list of thread counts   (default 1,2,4,8)
#   BIBS_BENCH_REPEAT    repetitions per configuration (default 3; min kept)
#   BIBS_BENCH_PATTERNS  fault-sim patterns per run    (default 4096)
#   BIBS_BENCH_CYCLES    session/CSTP emulated cycles  (default 1024)
#   BIBS_LANES           pin one lane backend (scalar64|avx2|avx512) for the
#                        whole layer; default: widest the CPU supports
#
# See docs/performance.md for the methodology and the JSON schema.
set -eu

build=${1:-build}
out=${2:-.}

runner="$build/bench/bench_runner"
if [ ! -x "$runner" ]; then
    echo "error: $runner not found or not executable." >&2
    echo "Build first: cmake -B $build -S . && cmake --build $build -j" >&2
    exit 1
fi
mkdir -p "$out"

# Compiled-kernel bench first: it measures every compiled-in lane backend
# (the BENCH_kernel.json "backends" matrix) and exits nonzero if any
# bit-identity gate fails, aborting the run before the (longer) scaling
# section.
"$build/bench/bench_kernel" --out "$out/BENCH_kernel.json"

exec "$runner" \
    --threads-list "${BIBS_BENCH_THREADS:-1,2,4,8}" \
    --repeat "${BIBS_BENCH_REPEAT:-3}" \
    --patterns "${BIBS_BENCH_PATTERNS:-4096}" \
    --cycles "${BIBS_BENCH_CYCLES:-1024}" \
    --suite-dir "$build/bench" \
    --metrics-dir "$out" \
    --out "$out/BENCH_parallel.json"
