# Empty dependencies file for bench_fig21_pseudo_exhaustive.
# This may be replaced when dependencies are built.
