file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_pseudo_exhaustive.dir/bench/bench_fig21_pseudo_exhaustive.cpp.o"
  "CMakeFiles/bench_fig21_pseudo_exhaustive.dir/bench/bench_fig21_pseudo_exhaustive.cpp.o.d"
  "bench/bench_fig21_pseudo_exhaustive"
  "bench/bench_fig21_pseudo_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_pseudo_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
