# Empty dependencies file for bench_lfsr_vs_random.
# This may be replaced when dependencies are built.
