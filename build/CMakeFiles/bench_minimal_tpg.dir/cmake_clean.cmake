file(REMOVE_RECURSE
  "CMakeFiles/bench_minimal_tpg.dir/bench/bench_minimal_tpg.cpp.o"
  "CMakeFiles/bench_minimal_tpg.dir/bench/bench_minimal_tpg.cpp.o.d"
  "bench/bench_minimal_tpg"
  "bench/bench_minimal_tpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimal_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
