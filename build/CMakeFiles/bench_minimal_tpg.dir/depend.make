# Empty dependencies file for bench_minimal_tpg.
# This may be replaced when dependencies are built.
