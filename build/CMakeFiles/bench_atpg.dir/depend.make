# Empty dependencies file for bench_atpg.
# This may be replaced when dependencies are built.
