
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_atpg.cpp" "CMakeFiles/bench_atpg.dir/bench/bench_atpg.cpp.o" "gcc" "CMakeFiles/bench_atpg.dir/bench/bench_atpg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuits/CMakeFiles/bibs_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bibs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/bibs_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bibs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tpg/CMakeFiles/bibs_tpg.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsr/CMakeFiles/bibs_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/bibs_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bibs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
