file(REMOVE_RECURSE
  "CMakeFiles/bench_misr_aliasing.dir/bench/bench_misr_aliasing.cpp.o"
  "CMakeFiles/bench_misr_aliasing.dir/bench/bench_misr_aliasing.cpp.o.d"
  "bench/bench_misr_aliasing"
  "bench/bench_misr_aliasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misr_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
