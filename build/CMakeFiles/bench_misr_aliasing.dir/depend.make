# Empty dependencies file for bench_misr_aliasing.
# This may be replaced when dependencies are built.
