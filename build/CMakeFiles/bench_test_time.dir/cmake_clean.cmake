file(REMOVE_RECURSE
  "CMakeFiles/bench_test_time.dir/bench/bench_test_time.cpp.o"
  "CMakeFiles/bench_test_time.dir/bench/bench_test_time.cpp.o.d"
  "bench/bench_test_time"
  "bench/bench_test_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
