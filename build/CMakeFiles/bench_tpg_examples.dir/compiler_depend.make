# Empty compiler generated dependencies file for bench_tpg_examples.
# This may be replaced when dependencies are built.
