file(REMOVE_RECURSE
  "CMakeFiles/bench_tpg_examples.dir/bench/bench_tpg_examples.cpp.o"
  "CMakeFiles/bench_tpg_examples.dir/bench/bench_tpg_examples.cpp.o.d"
  "bench/bench_tpg_examples"
  "bench/bench_tpg_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpg_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
