file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_structure.dir/bench/bench_table2_structure.cpp.o"
  "CMakeFiles/bench_table2_structure.dir/bench/bench_table2_structure.cpp.o.d"
  "bench/bench_table2_structure"
  "bench/bench_table2_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
