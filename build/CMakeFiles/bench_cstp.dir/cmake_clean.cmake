file(REMOVE_RECURSE
  "CMakeFiles/bench_cstp.dir/bench/bench_cstp.cpp.o"
  "CMakeFiles/bench_cstp.dir/bench/bench_cstp.cpp.o.d"
  "bench/bench_cstp"
  "bench/bench_cstp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cstp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
