# Empty dependencies file for bench_cstp.
# This may be replaced when dependencies are built.
