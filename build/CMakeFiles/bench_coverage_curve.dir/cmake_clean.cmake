file(REMOVE_RECURSE
  "CMakeFiles/bench_coverage_curve.dir/bench/bench_coverage_curve.cpp.o"
  "CMakeFiles/bench_coverage_curve.dir/bench/bench_coverage_curve.cpp.o.d"
  "bench/bench_coverage_curve"
  "bench/bench_coverage_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coverage_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
