# Empty compiler generated dependencies file for bench_coverage_curve.
# This may be replaced when dependencies are built.
