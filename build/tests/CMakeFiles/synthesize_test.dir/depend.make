# Empty dependencies file for synthesize_test.
# This may be replaced when dependencies are built.
