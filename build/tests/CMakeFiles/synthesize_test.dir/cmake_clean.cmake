file(REMOVE_RECURSE
  "CMakeFiles/synthesize_test.dir/synthesize_test.cpp.o"
  "CMakeFiles/synthesize_test.dir/synthesize_test.cpp.o.d"
  "synthesize_test"
  "synthesize_test.pdb"
  "synthesize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
