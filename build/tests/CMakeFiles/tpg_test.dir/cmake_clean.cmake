file(REMOVE_RECURSE
  "CMakeFiles/tpg_test.dir/tpg_test.cpp.o"
  "CMakeFiles/tpg_test.dir/tpg_test.cpp.o.d"
  "tpg_test"
  "tpg_test.pdb"
  "tpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
