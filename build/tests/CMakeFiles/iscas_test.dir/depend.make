# Empty dependencies file for iscas_test.
# This may be replaced when dependencies are built.
