file(REMOVE_RECURSE
  "CMakeFiles/cstp_test.dir/cstp_test.cpp.o"
  "CMakeFiles/cstp_test.dir/cstp_test.cpp.o.d"
  "cstp_test"
  "cstp_test.pdb"
  "cstp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
