# Empty dependencies file for cstp_test.
# This may be replaced when dependencies are built.
