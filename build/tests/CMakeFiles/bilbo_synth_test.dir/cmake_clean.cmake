file(REMOVE_RECURSE
  "CMakeFiles/bilbo_synth_test.dir/bilbo_synth_test.cpp.o"
  "CMakeFiles/bilbo_synth_test.dir/bilbo_synth_test.cpp.o.d"
  "bilbo_synth_test"
  "bilbo_synth_test.pdb"
  "bilbo_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bilbo_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
