# Empty compiler generated dependencies file for bilbo_synth_test.
# This may be replaced when dependencies are built.
