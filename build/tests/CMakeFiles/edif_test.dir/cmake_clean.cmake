file(REMOVE_RECURSE
  "CMakeFiles/edif_test.dir/edif_test.cpp.o"
  "CMakeFiles/edif_test.dir/edif_test.cpp.o.d"
  "edif_test"
  "edif_test.pdb"
  "edif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
