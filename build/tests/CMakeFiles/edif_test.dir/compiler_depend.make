# Empty compiler generated dependencies file for edif_test.
# This may be replaced when dependencies are built.
