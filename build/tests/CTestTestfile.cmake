# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/lfsr_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gate_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/tpg_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/synthesize_test[1]_include.cmake")
include("/root/repo/build/tests/bench_format_test[1]_include.cmake")
include("/root/repo/build/tests/edif_test[1]_include.cmake")
include("/root/repo/build/tests/explore_test[1]_include.cmake")
include("/root/repo/build/tests/bilbo_synth_test[1]_include.cmake")
include("/root/repo/build/tests/cstp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/iscas_test[1]_include.cmake")
include("/root/repo/build/tests/zoo_sweep_test[1]_include.cmake")
