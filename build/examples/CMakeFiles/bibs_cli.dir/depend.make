# Empty dependencies file for bibs_cli.
# This may be replaced when dependencies are built.
