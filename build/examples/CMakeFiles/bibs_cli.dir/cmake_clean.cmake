file(REMOVE_RECURSE
  "CMakeFiles/bibs_cli.dir/bibs_cli.cpp.o"
  "CMakeFiles/bibs_cli.dir/bibs_cli.cpp.o.d"
  "bibs_cli"
  "bibs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
