# Empty compiler generated dependencies file for datapath_bist.
# This may be replaced when dependencies are built.
