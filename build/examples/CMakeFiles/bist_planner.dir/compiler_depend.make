# Empty compiler generated dependencies file for bist_planner.
# This may be replaced when dependencies are built.
