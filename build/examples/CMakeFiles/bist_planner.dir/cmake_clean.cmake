file(REMOVE_RECURSE
  "CMakeFiles/bist_planner.dir/bist_planner.cpp.o"
  "CMakeFiles/bist_planner.dir/bist_planner.cpp.o.d"
  "bist_planner"
  "bist_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
