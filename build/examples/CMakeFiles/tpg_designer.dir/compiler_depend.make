# Empty compiler generated dependencies file for tpg_designer.
# This may be replaced when dependencies are built.
