file(REMOVE_RECURSE
  "CMakeFiles/tpg_designer.dir/tpg_designer.cpp.o"
  "CMakeFiles/tpg_designer.dir/tpg_designer.cpp.o.d"
  "tpg_designer"
  "tpg_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpg_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
