# Empty dependencies file for bibs_lfsr.
# This may be replaced when dependencies are built.
