
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfsr/bilbo.cpp" "src/lfsr/CMakeFiles/bibs_lfsr.dir/bilbo.cpp.o" "gcc" "src/lfsr/CMakeFiles/bibs_lfsr.dir/bilbo.cpp.o.d"
  "/root/repo/src/lfsr/bilbo_synth.cpp" "src/lfsr/CMakeFiles/bibs_lfsr.dir/bilbo_synth.cpp.o" "gcc" "src/lfsr/CMakeFiles/bibs_lfsr.dir/bilbo_synth.cpp.o.d"
  "/root/repo/src/lfsr/lfsr.cpp" "src/lfsr/CMakeFiles/bibs_lfsr.dir/lfsr.cpp.o" "gcc" "src/lfsr/CMakeFiles/bibs_lfsr.dir/lfsr.cpp.o.d"
  "/root/repo/src/lfsr/misr.cpp" "src/lfsr/CMakeFiles/bibs_lfsr.dir/misr.cpp.o" "gcc" "src/lfsr/CMakeFiles/bibs_lfsr.dir/misr.cpp.o.d"
  "/root/repo/src/lfsr/polynomial.cpp" "src/lfsr/CMakeFiles/bibs_lfsr.dir/polynomial.cpp.o" "gcc" "src/lfsr/CMakeFiles/bibs_lfsr.dir/polynomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gate/CMakeFiles/bibs_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bibs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
