file(REMOVE_RECURSE
  "libbibs_lfsr.a"
)
