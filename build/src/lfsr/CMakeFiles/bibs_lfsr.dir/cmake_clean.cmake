file(REMOVE_RECURSE
  "CMakeFiles/bibs_lfsr.dir/bilbo.cpp.o"
  "CMakeFiles/bibs_lfsr.dir/bilbo.cpp.o.d"
  "CMakeFiles/bibs_lfsr.dir/bilbo_synth.cpp.o"
  "CMakeFiles/bibs_lfsr.dir/bilbo_synth.cpp.o.d"
  "CMakeFiles/bibs_lfsr.dir/lfsr.cpp.o"
  "CMakeFiles/bibs_lfsr.dir/lfsr.cpp.o.d"
  "CMakeFiles/bibs_lfsr.dir/misr.cpp.o"
  "CMakeFiles/bibs_lfsr.dir/misr.cpp.o.d"
  "CMakeFiles/bibs_lfsr.dir/polynomial.cpp.o"
  "CMakeFiles/bibs_lfsr.dir/polynomial.cpp.o.d"
  "libbibs_lfsr.a"
  "libbibs_lfsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_lfsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
