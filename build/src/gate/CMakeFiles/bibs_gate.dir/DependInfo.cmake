
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gate/bench_format.cpp" "src/gate/CMakeFiles/bibs_gate.dir/bench_format.cpp.o" "gcc" "src/gate/CMakeFiles/bibs_gate.dir/bench_format.cpp.o.d"
  "/root/repo/src/gate/netlist.cpp" "src/gate/CMakeFiles/bibs_gate.dir/netlist.cpp.o" "gcc" "src/gate/CMakeFiles/bibs_gate.dir/netlist.cpp.o.d"
  "/root/repo/src/gate/sim.cpp" "src/gate/CMakeFiles/bibs_gate.dir/sim.cpp.o" "gcc" "src/gate/CMakeFiles/bibs_gate.dir/sim.cpp.o.d"
  "/root/repo/src/gate/synth.cpp" "src/gate/CMakeFiles/bibs_gate.dir/synth.cpp.o" "gcc" "src/gate/CMakeFiles/bibs_gate.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bibs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
