file(REMOVE_RECURSE
  "libbibs_gate.a"
)
