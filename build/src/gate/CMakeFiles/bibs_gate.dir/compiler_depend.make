# Empty compiler generated dependencies file for bibs_gate.
# This may be replaced when dependencies are built.
