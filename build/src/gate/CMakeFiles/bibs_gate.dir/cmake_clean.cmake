file(REMOVE_RECURSE
  "CMakeFiles/bibs_gate.dir/bench_format.cpp.o"
  "CMakeFiles/bibs_gate.dir/bench_format.cpp.o.d"
  "CMakeFiles/bibs_gate.dir/netlist.cpp.o"
  "CMakeFiles/bibs_gate.dir/netlist.cpp.o.d"
  "CMakeFiles/bibs_gate.dir/sim.cpp.o"
  "CMakeFiles/bibs_gate.dir/sim.cpp.o.d"
  "CMakeFiles/bibs_gate.dir/synth.cpp.o"
  "CMakeFiles/bibs_gate.dir/synth.cpp.o.d"
  "libbibs_gate.a"
  "libbibs_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
