file(REMOVE_RECURSE
  "libbibs_tpg.a"
)
