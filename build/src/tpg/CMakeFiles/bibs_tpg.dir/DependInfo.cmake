
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpg/exhaustive.cpp" "src/tpg/CMakeFiles/bibs_tpg.dir/exhaustive.cpp.o" "gcc" "src/tpg/CMakeFiles/bibs_tpg.dir/exhaustive.cpp.o.d"
  "/root/repo/src/tpg/minimize.cpp" "src/tpg/CMakeFiles/bibs_tpg.dir/minimize.cpp.o" "gcc" "src/tpg/CMakeFiles/bibs_tpg.dir/minimize.cpp.o.d"
  "/root/repo/src/tpg/optimize.cpp" "src/tpg/CMakeFiles/bibs_tpg.dir/optimize.cpp.o" "gcc" "src/tpg/CMakeFiles/bibs_tpg.dir/optimize.cpp.o.d"
  "/root/repo/src/tpg/procedures.cpp" "src/tpg/CMakeFiles/bibs_tpg.dir/procedures.cpp.o" "gcc" "src/tpg/CMakeFiles/bibs_tpg.dir/procedures.cpp.o.d"
  "/root/repo/src/tpg/structure.cpp" "src/tpg/CMakeFiles/bibs_tpg.dir/structure.cpp.o" "gcc" "src/tpg/CMakeFiles/bibs_tpg.dir/structure.cpp.o.d"
  "/root/repo/src/tpg/synthesize.cpp" "src/tpg/CMakeFiles/bibs_tpg.dir/synthesize.cpp.o" "gcc" "src/tpg/CMakeFiles/bibs_tpg.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfsr/CMakeFiles/bibs_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/bibs_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bibs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
