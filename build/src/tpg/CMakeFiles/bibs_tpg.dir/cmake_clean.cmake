file(REMOVE_RECURSE
  "CMakeFiles/bibs_tpg.dir/exhaustive.cpp.o"
  "CMakeFiles/bibs_tpg.dir/exhaustive.cpp.o.d"
  "CMakeFiles/bibs_tpg.dir/minimize.cpp.o"
  "CMakeFiles/bibs_tpg.dir/minimize.cpp.o.d"
  "CMakeFiles/bibs_tpg.dir/optimize.cpp.o"
  "CMakeFiles/bibs_tpg.dir/optimize.cpp.o.d"
  "CMakeFiles/bibs_tpg.dir/procedures.cpp.o"
  "CMakeFiles/bibs_tpg.dir/procedures.cpp.o.d"
  "CMakeFiles/bibs_tpg.dir/structure.cpp.o"
  "CMakeFiles/bibs_tpg.dir/structure.cpp.o.d"
  "CMakeFiles/bibs_tpg.dir/synthesize.cpp.o"
  "CMakeFiles/bibs_tpg.dir/synthesize.cpp.o.d"
  "libbibs_tpg.a"
  "libbibs_tpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
