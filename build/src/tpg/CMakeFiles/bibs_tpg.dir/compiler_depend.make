# Empty compiler generated dependencies file for bibs_tpg.
# This may be replaced when dependencies are built.
