file(REMOVE_RECURSE
  "CMakeFiles/bibs_fault.dir/atpg.cpp.o"
  "CMakeFiles/bibs_fault.dir/atpg.cpp.o.d"
  "CMakeFiles/bibs_fault.dir/fault.cpp.o"
  "CMakeFiles/bibs_fault.dir/fault.cpp.o.d"
  "CMakeFiles/bibs_fault.dir/simulator.cpp.o"
  "CMakeFiles/bibs_fault.dir/simulator.cpp.o.d"
  "libbibs_fault.a"
  "libbibs_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
