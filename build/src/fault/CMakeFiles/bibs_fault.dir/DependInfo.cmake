
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/atpg.cpp" "src/fault/CMakeFiles/bibs_fault.dir/atpg.cpp.o" "gcc" "src/fault/CMakeFiles/bibs_fault.dir/atpg.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/bibs_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/bibs_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/simulator.cpp" "src/fault/CMakeFiles/bibs_fault.dir/simulator.cpp.o" "gcc" "src/fault/CMakeFiles/bibs_fault.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gate/CMakeFiles/bibs_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bibs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
