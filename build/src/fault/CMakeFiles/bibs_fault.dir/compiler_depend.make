# Empty compiler generated dependencies file for bibs_fault.
# This may be replaced when dependencies are built.
