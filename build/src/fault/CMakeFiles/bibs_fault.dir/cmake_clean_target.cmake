file(REMOVE_RECURSE
  "libbibs_fault.a"
)
