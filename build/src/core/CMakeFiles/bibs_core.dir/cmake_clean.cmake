file(REMOVE_RECURSE
  "CMakeFiles/bibs_core.dir/designer.cpp.o"
  "CMakeFiles/bibs_core.dir/designer.cpp.o.d"
  "CMakeFiles/bibs_core.dir/explore.cpp.o"
  "CMakeFiles/bibs_core.dir/explore.cpp.o.d"
  "CMakeFiles/bibs_core.dir/kernels.cpp.o"
  "CMakeFiles/bibs_core.dir/kernels.cpp.o.d"
  "CMakeFiles/bibs_core.dir/report.cpp.o"
  "CMakeFiles/bibs_core.dir/report.cpp.o.d"
  "CMakeFiles/bibs_core.dir/schedule.cpp.o"
  "CMakeFiles/bibs_core.dir/schedule.cpp.o.d"
  "libbibs_core.a"
  "libbibs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
