# Empty dependencies file for bibs_core.
# This may be replaced when dependencies are built.
