
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/designer.cpp" "src/core/CMakeFiles/bibs_core.dir/designer.cpp.o" "gcc" "src/core/CMakeFiles/bibs_core.dir/designer.cpp.o.d"
  "/root/repo/src/core/explore.cpp" "src/core/CMakeFiles/bibs_core.dir/explore.cpp.o" "gcc" "src/core/CMakeFiles/bibs_core.dir/explore.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/bibs_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/bibs_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/bibs_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/bibs_core.dir/report.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/bibs_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/bibs_core.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bibs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tpg/CMakeFiles/bibs_tpg.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsr/CMakeFiles/bibs_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/bibs_gate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
