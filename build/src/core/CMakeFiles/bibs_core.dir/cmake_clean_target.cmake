file(REMOVE_RECURSE
  "libbibs_core.a"
)
