
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/datapaths.cpp" "src/circuits/CMakeFiles/bibs_circuits.dir/datapaths.cpp.o" "gcc" "src/circuits/CMakeFiles/bibs_circuits.dir/datapaths.cpp.o.d"
  "/root/repo/src/circuits/figures.cpp" "src/circuits/CMakeFiles/bibs_circuits.dir/figures.cpp.o" "gcc" "src/circuits/CMakeFiles/bibs_circuits.dir/figures.cpp.o.d"
  "/root/repo/src/circuits/random.cpp" "src/circuits/CMakeFiles/bibs_circuits.dir/random.cpp.o" "gcc" "src/circuits/CMakeFiles/bibs_circuits.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/bibs_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
