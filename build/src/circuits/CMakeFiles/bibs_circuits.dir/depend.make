# Empty dependencies file for bibs_circuits.
# This may be replaced when dependencies are built.
