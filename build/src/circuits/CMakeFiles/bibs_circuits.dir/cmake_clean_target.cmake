file(REMOVE_RECURSE
  "libbibs_circuits.a"
)
