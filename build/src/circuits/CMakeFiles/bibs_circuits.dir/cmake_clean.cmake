file(REMOVE_RECURSE
  "CMakeFiles/bibs_circuits.dir/datapaths.cpp.o"
  "CMakeFiles/bibs_circuits.dir/datapaths.cpp.o.d"
  "CMakeFiles/bibs_circuits.dir/figures.cpp.o"
  "CMakeFiles/bibs_circuits.dir/figures.cpp.o.d"
  "CMakeFiles/bibs_circuits.dir/random.cpp.o"
  "CMakeFiles/bibs_circuits.dir/random.cpp.o.d"
  "libbibs_circuits.a"
  "libbibs_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
