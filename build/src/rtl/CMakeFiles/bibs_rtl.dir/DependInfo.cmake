
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/edif.cpp" "src/rtl/CMakeFiles/bibs_rtl.dir/edif.cpp.o" "gcc" "src/rtl/CMakeFiles/bibs_rtl.dir/edif.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/rtl/CMakeFiles/bibs_rtl.dir/netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/bibs_rtl.dir/netlist.cpp.o.d"
  "/root/repo/src/rtl/parser.cpp" "src/rtl/CMakeFiles/bibs_rtl.dir/parser.cpp.o" "gcc" "src/rtl/CMakeFiles/bibs_rtl.dir/parser.cpp.o.d"
  "/root/repo/src/rtl/sexpr.cpp" "src/rtl/CMakeFiles/bibs_rtl.dir/sexpr.cpp.o" "gcc" "src/rtl/CMakeFiles/bibs_rtl.dir/sexpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bibs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
