# Empty compiler generated dependencies file for bibs_rtl.
# This may be replaced when dependencies are built.
