file(REMOVE_RECURSE
  "CMakeFiles/bibs_rtl.dir/edif.cpp.o"
  "CMakeFiles/bibs_rtl.dir/edif.cpp.o.d"
  "CMakeFiles/bibs_rtl.dir/netlist.cpp.o"
  "CMakeFiles/bibs_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/bibs_rtl.dir/parser.cpp.o"
  "CMakeFiles/bibs_rtl.dir/parser.cpp.o.d"
  "CMakeFiles/bibs_rtl.dir/sexpr.cpp.o"
  "CMakeFiles/bibs_rtl.dir/sexpr.cpp.o.d"
  "libbibs_rtl.a"
  "libbibs_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
