file(REMOVE_RECURSE
  "libbibs_rtl.a"
)
