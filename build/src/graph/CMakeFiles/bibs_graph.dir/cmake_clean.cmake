file(REMOVE_RECURSE
  "CMakeFiles/bibs_graph.dir/analysis.cpp.o"
  "CMakeFiles/bibs_graph.dir/analysis.cpp.o.d"
  "libbibs_graph.a"
  "libbibs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
