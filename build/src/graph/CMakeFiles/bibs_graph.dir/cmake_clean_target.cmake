file(REMOVE_RECURSE
  "libbibs_graph.a"
)
