# Empty compiler generated dependencies file for bibs_graph.
# This may be replaced when dependencies are built.
