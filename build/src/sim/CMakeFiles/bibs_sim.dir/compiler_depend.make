# Empty compiler generated dependencies file for bibs_sim.
# This may be replaced when dependencies are built.
