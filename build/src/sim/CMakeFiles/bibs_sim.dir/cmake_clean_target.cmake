file(REMOVE_RECURSE
  "libbibs_sim.a"
)
