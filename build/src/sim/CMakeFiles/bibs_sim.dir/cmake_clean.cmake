file(REMOVE_RECURSE
  "CMakeFiles/bibs_sim.dir/cstp.cpp.o"
  "CMakeFiles/bibs_sim.dir/cstp.cpp.o.d"
  "CMakeFiles/bibs_sim.dir/lane_engine.cpp.o"
  "CMakeFiles/bibs_sim.dir/lane_engine.cpp.o.d"
  "CMakeFiles/bibs_sim.dir/session.cpp.o"
  "CMakeFiles/bibs_sim.dir/session.cpp.o.d"
  "CMakeFiles/bibs_sim.dir/testplan.cpp.o"
  "CMakeFiles/bibs_sim.dir/testplan.cpp.o.d"
  "libbibs_sim.a"
  "libbibs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
