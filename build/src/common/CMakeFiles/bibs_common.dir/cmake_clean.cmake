file(REMOVE_RECURSE
  "CMakeFiles/bibs_common.dir/bitvec.cpp.o"
  "CMakeFiles/bibs_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/bibs_common.dir/prng.cpp.o"
  "CMakeFiles/bibs_common.dir/prng.cpp.o.d"
  "CMakeFiles/bibs_common.dir/table.cpp.o"
  "CMakeFiles/bibs_common.dir/table.cpp.o.d"
  "libbibs_common.a"
  "libbibs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
