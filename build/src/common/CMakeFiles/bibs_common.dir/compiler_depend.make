# Empty compiler generated dependencies file for bibs_common.
# This may be replaced when dependencies are built.
