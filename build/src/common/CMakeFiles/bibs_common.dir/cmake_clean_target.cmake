file(REMOVE_RECURSE
  "libbibs_common.a"
)
